"""Unit tests for the Fourier sampling layer and its two backends."""

import numpy as np
import pytest

from repro.linalg.zmodule import ZModule, annihilator, subgroup_contains
from repro.quantum.sampling import (
    FourierSampler,
    SubgroupStructureOracle,
    TupleFunctionOracle,
)


class TestOracles:
    def test_subgroup_structure_oracle_labels(self):
        oracle = SubgroupStructureOracle([8, 9], [(2, 3)])
        module = oracle.module
        for h in module.subgroup_elements([(2, 3)]):
            assert oracle.evaluate(module.add((5, 1), h)) == oracle.evaluate((5, 1))
        assert oracle.evaluate((1, 0)) != oracle.evaluate((0, 0))
        assert oracle.kernel_generators() == oracle.kernel_generators()

    def test_tuple_function_oracle_declared_kernel(self):
        oracle = TupleFunctionOracle([4, 4], lambda x: (x[0] % 2, x[1]), declared_kernel=[(2, 0)])
        assert oracle.kernel_generators() == [(2, 0)]

    def test_tuple_function_oracle_enumerated_kernel(self):
        oracle = TupleFunctionOracle([6], lambda x: x[0] % 3)
        kernel = oracle.kernel_generators()
        module = ZModule([6])
        assert sorted(module.subgroup_elements(kernel)) == [(0,), (3,)]

    def test_enumeration_limit(self):
        oracle = TupleFunctionOracle([1 << 10, 1 << 10], lambda x: x, max_enumeration=100)
        with pytest.raises(ValueError):
            oracle.kernel_generators()

    def test_value_cache(self):
        calls = []
        oracle = TupleFunctionOracle([8], lambda x: calls.append(x) or x[0] % 4)
        oracle.evaluate((3,))
        oracle.evaluate((3,))
        assert len(calls) == 1

    def test_domain_size(self):
        assert TupleFunctionOracle([4, 6], lambda x: 0).domain_size() == 24


class TestSamplerBackends:
    @pytest.mark.parametrize("backend", ["analytic", "statevector"])
    def test_samples_lie_in_annihilator(self, backend, rng):
        moduli = [8, 6]
        hidden = [(2, 3)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        sampler = FourierSampler(backend=backend, rng=rng)
        dual = annihilator(hidden, moduli)
        for sample in sampler.sample(oracle, 25):
            assert subgroup_contains(dual, sample, moduli)

    def test_quantum_queries_counted_per_round(self, rng):
        oracle = SubgroupStructureOracle([4, 4], [(2, 2)])
        sampler = FourierSampler(backend="analytic", rng=rng)
        sampler.sample(oracle, 7)
        assert oracle.counter.quantum_queries == 7

    def test_auto_backend_selects_by_domain_size(self, rng):
        small = SubgroupStructureOracle([4], [(2,)])
        large = SubgroupStructureOracle([1 << 10, 1 << 10], [(2, 0)])
        sampler = FourierSampler(backend="auto", rng=rng, statevector_limit=16)
        assert sampler._resolve_backend(small) == "statevector"
        assert sampler._resolve_backend(large) == "analytic"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FourierSampler(backend="imaginary")

    def test_trivial_hidden_subgroup_samples_everything(self, rng):
        # H = {0}: samples should cover many dual elements (all of Z_8).
        oracle = SubgroupStructureOracle([8], [(0,)])
        sampler = FourierSampler(backend="analytic", rng=rng)
        samples = {s[0] for s in sampler.sample(oracle, 60)}
        assert len(samples) >= 5

    def test_full_hidden_subgroup_samples_only_zero(self, rng):
        oracle = SubgroupStructureOracle([6], [(1,)])
        for backend in ("analytic", "statevector"):
            sampler = FourierSampler(backend=backend, rng=rng)
            assert all(s == (0,) for s in sampler.sample(oracle, 10))

    def test_backends_agree_statistically(self, rng):
        """Chi-squared style agreement between the two backends (Simon instance)."""
        moduli = [2, 2, 2]
        hidden = [(1, 1, 0)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        exact = FourierSampler(backend="analytic", rng=rng).exact_distribution(oracle)
        counts = np.zeros(exact.shape)
        sampler = FourierSampler(backend="statevector", rng=rng)
        n = 160
        for sample in sampler.sample(oracle, n):
            counts[sample] += 1
        empirical = counts / n
        # The four dual elements each have probability 1/4.
        support = exact > 0
        assert np.all(empirical[~support] == 0)
        assert np.max(np.abs(empirical[support] - exact[support])) < 0.15

    def test_exact_distribution_is_uniform_on_dual(self, rng):
        moduli = [4, 4]
        hidden = [(2, 0)]
        oracle = SubgroupStructureOracle(moduli, hidden)
        distribution = FourierSampler(rng=rng).exact_distribution(oracle)
        dual = annihilator(hidden, moduli)
        module = ZModule(moduli)
        dual_elements = module.subgroup_elements(dual)
        assert np.isclose(distribution.sum(), 1.0)
        for y in dual_elements:
            assert np.isclose(distribution[y], 1.0 / len(dual_elements))
