"""Unit tests for Shor-style primitives and the Watrous solvable-group layer."""

import numpy as np
import pytest

from repro.blackbox.oracle import QueryCounter
from repro.groups.abelian import AbelianTupleGroup, cyclic_group
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import symmetric_group
from repro.groups.products import dihedral_semidirect, metacyclic_group
from repro.quantum.sampling import FourierSampler
from repro.quantum.shor import (
    continued_fraction_convergents,
    order_via_period_sampling,
    quantum_discrete_log,
    quantum_element_order,
    quantum_factor,
    shor_period_gate_level,
)
from repro.quantum.watrous import (
    coset_identity_test,
    normal_subgroup_membership,
    order_modulo_subgroup,
    uniform_superposition_elements,
)


class TestContinuedFractions:
    def test_convergents_of_simple_fraction(self):
        convergents = continued_fraction_convergents(5, 8)
        assert convergents[-1] == pytest.approx(5 / 8)
        denominators = [c.denominator for c in convergents]
        assert 8 in denominators

    def test_convergents_find_period_denominator(self):
        # measurement outcome 683 out of 2^11 approximates k/3
        convergents = continued_fraction_convergents(683, 2048)
        assert any(c.denominator == 3 for c in convergents)


class TestGateLevelShor:
    @pytest.mark.parametrize("a,n,expected", [(2, 15, 4), (7, 15, 4), (4, 15, 2), (2, 21, 6), (5, 21, 6)])
    def test_period_finding(self, a, n, expected, rng):
        assert shor_period_gate_level(a, n, rng) == expected

    def test_rejects_non_unit(self, rng):
        with pytest.raises(ValueError):
            shor_period_gate_level(6, 15, rng)

    def test_factor_small_semiprime(self, rng):
        assert quantum_factor(15, rng) == {3: 1, 5: 1}
        assert quantum_factor(21, rng) == {3: 1, 7: 1}

    def test_factor_large_falls_back(self, rng):
        counter = QueryCounter()
        assert quantum_factor(3 * 5 * 7 * 11 * 13, rng, counter) == {3: 1, 5: 1, 7: 1, 11: 1, 13: 1}
        assert counter.extra["factor_oracle_calls"] == 1


class TestOrderFinding:
    def test_quantum_element_order_accounts_calls(self):
        group = cyclic_group(60)
        counter = QueryCounter()
        assert quantum_element_order(group, (12,), counter) == 5
        assert quantum_element_order(group, (7,), counter) == 60
        assert counter.extra["order_oracle_calls"] == 2

    @pytest.mark.parametrize(
        "group,element,expected",
        [
            (cyclic_group(60), (12,), 5),
            (AbelianTupleGroup([8, 9]), (2, 3), 12),
            (extraspecial_group(5), ((1,), (0,), 0), 5),
            (dihedral_semidirect(9), ((0,), (1,)), 2),
        ],
    )
    def test_order_via_period_sampling(self, group, element, expected, rng):
        exponent = group.exponent_bound()
        sampler = FourierSampler(rng=rng)
        assert order_via_period_sampling(group, element, exponent, sampler) == expected

    def test_discrete_log_oracle(self):
        counter = QueryCounter()
        assert quantum_discrete_log(3, pow(3, 17, 101), 101, counter) == 17 % 100
        assert counter.extra["dlog_oracle_calls"] == 1


class TestWatrousPrimitives:
    def test_membership_oracle_counts(self):
        group = dihedral_semidirect(7)
        counter = QueryCounter()
        rotation = group.embed_normal((1,))
        member = normal_subgroup_membership(group, [rotation], counter)
        assert member(group.embed_normal((3,)))
        assert not member(group.embed_quotient((1,)))
        assert counter.extra["membership_oracle_calls"] == 2

    def test_uniform_superposition_support(self):
        group = dihedral_semidirect(6)
        elements = uniform_superposition_elements(group, [group.embed_normal((2,))])
        assert len(elements) == 3

    def test_coset_identity_test(self):
        group = metacyclic_group(7, 3)
        normal = [group.embed_normal((1,))]
        same_coset = coset_identity_test(group, normal)
        a = group.embed_quotient((1,))
        b = group.multiply(a, group.embed_normal((5,)))
        assert same_coset(a, b)
        assert not same_coset(a, group.identity())

    @pytest.mark.parametrize(
        "n,element_builder,expected",
        [
            (9, lambda g: g.embed_quotient((1,)), 2),
            (9, lambda g: g.embed_normal((3,)), 1),
            (9, lambda g: g.multiply(g.embed_normal((1,)), g.embed_quotient((1,))), 2),
        ],
    )
    def test_order_modulo_subgroup_dihedral(self, n, element_builder, expected):
        group = dihedral_semidirect(n)
        normal = [group.embed_normal((1,))]
        element = element_builder(group)
        assert order_modulo_subgroup(group, element, normal) == expected

    def test_order_modulo_subgroup_permutation(self):
        s4 = symmetric_group(4)
        from repro.groups.perm import alternating_group

        a4 = alternating_group(4).generators()
        transposition = (1, 0, 2, 3)
        three_cycle = (1, 2, 0, 3)
        assert order_modulo_subgroup(s4, transposition, a4) == 2
        assert order_modulo_subgroup(s4, three_cycle, a4) == 1

    def test_order_modulo_trivial_subgroup_is_element_order(self):
        group = cyclic_group(12)
        assert order_modulo_subgroup(group, (4,), [(0,)]) == 3
