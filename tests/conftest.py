"""Shared fixtures for the test-suite.

Every randomised test receives an explicitly seeded generator so the whole
suite is reproducible; the ``sampler`` fixture is the default Fourier
sampling backend (auto: statevector for small domains, analytic beyond).
"""

import numpy as np
import pytest

from repro.quantum.sampling import FourierSampler


@pytest.fixture
def rng():
    return np.random.default_rng(20010202)  # arXiv submission date of the paper


@pytest.fixture
def sampler(rng):
    return FourierSampler(backend="auto", rng=rng)


@pytest.fixture
def analytic_sampler(rng):
    return FourierSampler(backend="analytic", rng=rng)


@pytest.fixture
def statevector_sampler(rng):
    return FourierSampler(backend="statevector", rng=rng)
