"""Tests for the classical, Ettinger--Høyer and Rötteler--Beth baselines."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, random_abelian_hsp_instance
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.catalog import wreath_instance
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect
from repro.hsp.baseline_classical import classical_collision_hsp, classical_exhaustive_hsp
from repro.hsp.ettinger_hoyer import dihedral_sample_distribution, ettinger_hoyer_dihedral
from repro.hsp.rotteler_beth import rotteler_beth_wreath
from repro.quantum.sampling import FourierSampler


class TestClassicalBaselines:
    def test_exhaustive_solves_abelian_instance(self, rng):
        instance = random_abelian_hsp_instance([6, 4], rng)
        result = classical_exhaustive_hsp(instance)
        assert instance.verify(result.generators)
        assert result.oracle_queries == 24
        assert result.method == "exhaustive"

    def test_exhaustive_solves_nonabelian_instance(self, rng):
        group = extraspecial_group(3)
        instance = HSPInstance.from_subgroup(group, [((1,), (1,), 0)])
        result = classical_exhaustive_hsp(instance)
        assert instance.verify(result.generators)
        assert result.oracle_queries == 27

    def test_exhaustive_query_count_scales_with_group_order(self, rng):
        small = classical_exhaustive_hsp(random_abelian_hsp_instance([8], rng))
        large = classical_exhaustive_hsp(random_abelian_hsp_instance([64], rng))
        assert large.oracle_queries == 8 * small.oracle_queries

    def test_exhaustive_respects_limit(self, rng):
        instance = random_abelian_hsp_instance([128, 128], rng)
        with pytest.raises(ValueError):
            classical_exhaustive_hsp(instance, max_elements=1000)

    def test_collision_baseline_finds_subgroup(self, rng):
        group = AbelianTupleGroup([16, 4])
        instance = HSPInstance.from_subgroup(group, [(4, 2)])
        result = classical_collision_hsp(instance, rng=rng)
        assert instance.verify(result.generators) or len(result.generators) > 0
        assert result.method == "collision"
        assert result.oracle_queries > 0


class TestEttingerHoyer:
    def test_distribution_normalised(self):
        dist = dihedral_sample_distribution(32, 5)
        assert np.isclose(dist.sum(), 1.0)
        assert np.all(dist >= 0)

    def test_distribution_of_zero_slope_is_uniform(self):
        dist = dihedral_sample_distribution(16, 0)
        assert np.allclose(dist, 1 / 16)

    @pytest.mark.parametrize("n,slope", [(32, 7), (64, 13), (64, 40), (128, 1)])
    def test_recovers_slope(self, n, slope, rng):
        result = ettinger_hoyer_dihedral(n, slope, rng)
        assert result.success
        assert result.recovered_slope == slope

    def test_query_count_logarithmic_postprocessing_exponential(self, rng):
        small = ettinger_hoyer_dihedral(32, 3, rng)
        large = ettinger_hoyer_dihedral(256, 3, rng)
        # quantum queries grow like log n ...
        assert large.quantum_queries <= small.quantum_queries + 8 * 3
        # ... but the post-processing scans all n candidates.
        assert large.postprocessing_candidates_scanned == 256
        assert small.postprocessing_candidates_scanned == 32

    def test_rejects_tiny_groups(self, rng):
        with pytest.raises(ValueError):
            ettinger_hoyer_dihedral(2, 1, rng)


class TestRottelerBeth:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_subgroups_inside_base_group(self, k, rng):
        group, _ = wreath_instance(k)
        hidden = [group.embed_normal(tuple(int(rng.integers(0, 2)) for _ in range(2 * k)))]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = rotteler_beth_wreath(instance, FourierSampler(rng=rng))
        assert instance.verify(result.generators or [group.identity()])
        assert result.swap_coset_generator is None

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_subgroups_meeting_swap_coset(self, k, rng):
        group, _ = wreath_instance(k)
        vector = tuple(int(rng.integers(0, 2)) for _ in range(2 * k))
        hidden = [(vector, (1,))]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = rotteler_beth_wreath(instance, FourierSampler(rng=rng))
        assert instance.verify(result.generators)
        assert result.swap_coset_generator is not None

    def test_random_subgroups(self, rng):
        group, _ = wreath_instance(2)
        for _ in range(5):
            hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
            instance = HSPInstance.from_subgroup(group, hidden)
            result = rotteler_beth_wreath(instance, FourierSampler(rng=rng))
            assert instance.verify(result.generators or [group.identity()])

    def test_query_report_present(self, rng):
        group, _ = wreath_instance(2)
        instance = HSPInstance.from_subgroup(group, [group.uniform_random_element(rng)])
        result = rotteler_beth_wreath(instance, FourierSampler(rng=rng))
        assert result.query_report["quantum_queries"] > 0
