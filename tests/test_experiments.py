"""Tests for the parallel experiment-orchestration subsystem.

Covers the determinism contract (sweep expansion, per-run seeding,
``workers=1`` vs ``workers=4`` byte-identity), the accounting contract (the
aggregate query totals of a BENCH file are the exact ``QueryCounter`` sum of
the per-run reports), the instance registry, and the
``python -m repro.experiments`` command line.
"""

import json
import os

import numpy as np
import pytest

from repro.blackbox.oracle import QueryCounter
from repro.experiments import (
    RunSpec,
    SamplerSpec,
    SweepSpec,
    WORKLOADS,
    build_instance,
    execute_run,
    families,
    get_workload,
    run_sweep,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.results import load_bench, rows_bytes
from repro.experiments.specs import derive_seed

SEED = 20010202


def tiny_spec(name="tiny", **kwargs):
    defaults = dict(repeats=2, seed=SEED)
    defaults.update(kwargs)
    return SweepSpec.from_grid(name, "dihedral_rotation", {"n": [8, 12]}, **defaults)


class TestSpecs:
    def test_expansion_is_deterministic(self):
        first = tiny_spec().expand()
        second = tiny_spec().expand()
        assert first == second
        assert [run.index for run in first] == list(range(4))

    def test_per_run_seeds_are_distinct_and_index_derived(self):
        runs = tiny_spec().expand()
        seeds = [run.seed for run in runs]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [derive_seed(SEED, index) for index in range(len(runs))]

    def test_grid_points_walk_sorted_keys_row_major(self):
        spec = SweepSpec.from_grid("grid", "extraspecial_random", {"p": [3, 5], "rank": [1, 2]})
        points = spec.points()
        assert points == [
            {"p": 3, "rank": 1},
            {"p": 3, "rank": 2},
            {"p": 5, "rank": 1},
            {"p": 5, "rank": 2},
        ]

    def test_run_specs_are_picklable_and_hashable(self):
        import pickle

        for run in tiny_spec().expand():
            assert pickle.loads(pickle.dumps(run)) == run
            hash(run)

    def test_overrides(self):
        spec = tiny_spec().with_overrides(seed=7, repeats=1)
        assert spec.seed == 7 and spec.repeats == 1
        assert len(spec.expand()) == 2

    def test_invalid_overrides_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            tiny_spec().with_overrides(repeats=0)
        with pytest.raises(ValueError, match="seed"):
            tiny_spec().with_overrides(seed=-1)

    def test_spec_json_round_trip_is_json_safe(self):
        payload = json.dumps(tiny_spec().to_json_dict())
        assert json.loads(payload)["family"] == "dihedral_rotation"


class TestRegistry:
    TINY_PARAMS = {
        "abelian_random": {"moduli": (8, 9)},
        "dihedral_rotation": {"n": 8},
        "dihedral_bounded_quotient": {"d": 3},
        "diagnostic_fault": {"n": 8},
        "metacyclic_core": {"pq": (7, 3)},
        "symmetric_alternating": {"n": 4},
        "extraspecial_center": {"p": 3},
        "extraspecial_random": {"p": 3},
        "wreath_random": {"k": 2},
    }

    def test_every_family_has_tiny_params(self):
        assert set(self.TINY_PARAMS) == set(families())

    @pytest.mark.parametrize("family", sorted(TINY_PARAMS))
    def test_family_builds_and_solves(self, family):
        spec = SweepSpec.from_grid(
            f"tiny-{family}", family, {key: [value] for key, value in self.TINY_PARAMS[family].items()}
        )
        (record,) = (execute_run(run) for run in spec.expand())
        assert record.success, (family, record)
        assert record.query_report["quantum_queries"] >= 0

    def test_builders_are_rng_deterministic(self):
        a = build_instance("extraspecial_random", {"p": 5}, np.random.default_rng(SEED))
        b = build_instance("extraspecial_random", {"p": 5}, np.random.default_rng(SEED))
        assert a.hidden_generators == b.hidden_generators

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError, match="unknown instance family"):
            build_instance("no-such-family", {}, np.random.default_rng(0))

    def test_unknown_solver_options_fail_fast(self):
        spec = SweepSpec.from_grid(
            "bad-options", "dihedral_rotation", {"n": [8]}, solver_options={"quotient_bound": 64}
        )
        with pytest.raises(ValueError, match="unsupported solver_options"):
            execute_run(spec.expand()[0])


class TestRunnerDeterminism:
    def test_workers_1_and_4_byte_identical_rows(self, tmp_path):
        spec = tiny_spec("parity")
        path1, serial = run_sweep(spec, workers=1, out_dir=str(tmp_path / "serial"))
        path4, pooled = run_sweep(spec, workers=4, out_dir=str(tmp_path / "pooled"))
        assert rows_bytes(serial) == rows_bytes(pooled)
        # The acceptance rerun: workers=1 again at the same seed.
        _, again = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(serial) == rows_bytes(again)
        # And the files really were written.
        assert os.path.exists(path1) and os.path.exists(path4)

    def test_rows_cover_strategy_queries_and_generators(self):
        _, payload = run_sweep(tiny_spec(), workers=1, out_dir=None)
        for row in payload["rows"]:
            assert row["strategy"] == "hidden_normal"
            assert row["success"] is True
            assert row["generators"], "recovered subgroup generators must be recorded"
            assert row["query_report"]["quantum_queries"] > 0

    def test_aggregate_totals_equal_sum_of_per_run_reports(self):
        _, payload = run_sweep(tiny_spec(), workers=2, out_dir=None)
        merged = sum(
            (QueryCounter.from_snapshot(row["query_report"]) for row in payload["rows"]),
            QueryCounter(),
        )
        assert payload["aggregate"]["query_totals"] == {
            key: int(value) for key, value in sorted(merged.snapshot().items())
        }

    def test_sharded_sampler_spec_matches_unsharded(self):
        plain = tiny_spec("plain")
        sharded = tiny_spec("plain", sampler=SamplerSpec(shards=3))
        _, a = run_sweep(plain, workers=1, out_dir=None)
        _, b = run_sweep(sharded, workers=1, out_dir=None)
        assert rows_bytes(a) == rows_bytes(b)

    def test_engine_and_scalar_configs_report_identical_queries(self):
        # Same sampling path (batch), engine on vs off: the PR 1 accounting
        # contract — batch/scalar arithmetic report identical totals.
        engine_spec = tiny_spec("cfg")
        scalar_spec = tiny_spec("cfg", engine=False)
        _, engine_payload = run_sweep(engine_spec, workers=1, out_dir=None)
        _, scalar_payload = run_sweep(scalar_spec, workers=1, out_dir=None)
        for engine_row, scalar_row in zip(engine_payload["rows"], scalar_payload["rows"]):
            assert engine_row["generators"] == scalar_row["generators"]
            assert engine_row["query_report"] == scalar_row["query_report"]

    def test_engine_cache_dir_populates_and_reuses(self, tmp_path):
        cache_dir = tmp_path / "cayley"
        spec = SweepSpec.from_grid(
            "cached",
            "extraspecial_random",
            {"p": [3]},
            solver_options={"engine_cache_dir": str(cache_dir)},
        )
        _, first = run_sweep(spec, workers=1, out_dir=None)
        cached = os.listdir(cache_dir)
        assert cached, "a sweep with engine_cache_dir must populate the Cayley cache"
        _, second = run_sweep(spec, workers=1, out_dir=None)
        assert rows_bytes(first) == rows_bytes(second)
        assert sorted(os.listdir(cache_dir)) == sorted(cached), "rerun reuses the same cache files"

    def test_pre_engine_baseline_configuration_solves(self):
        # The full scalar profile (engine off AND per-round sampling) is the
        # bench_engine baseline; its rng consumption differs, so only the
        # recovered subgroups are compared.
        scalar_spec = tiny_spec("baseline", engine=False, sampler=SamplerSpec(batch=False))
        _, payload = run_sweep(scalar_spec, workers=1, out_dir=None)
        assert payload["aggregate"]["successes"] == payload["aggregate"]["runs"]


class TestWorkloads:
    def test_smoke_workload_declared(self):
        spec = get_workload("smoke")
        assert spec.family == "dihedral_rotation"
        assert len(spec.expand()) == 4

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("definitely-not-declared")

    def test_workload_names_are_unique_specs(self):
        assert len(WORKLOADS) == len({spec.name for spec in WORKLOADS.values()})
        for name, spec in WORKLOADS.items():
            assert name == spec.name


class TestCLI:
    def test_run_writes_bench_file_with_two_workers(self, tmp_path, capsys):
        status = cli_main(["run", "smoke", "--workers", "2", "--out", str(tmp_path)])
        assert status == 0
        path = tmp_path / "BENCH_smoke.json"
        assert path.exists()
        payload = load_bench(str(path))
        assert payload["workers"] == 2
        assert payload["aggregate"]["successes"] == payload["aggregate"]["runs"] == 4
        assert "wrote" in capsys.readouterr().out

    def test_list_prints_workloads_and_families(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        assert "smoke" in output and "dihedral_rotation" in output

    def test_report_reads_back_a_bench_file(self, tmp_path, capsys):
        cli_main(["run", "smoke", "--out", str(tmp_path)])
        capsys.readouterr()
        assert cli_main(["report", "smoke", "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "aggregate" in output and "hidden_normal" in output

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert cli_main(["report", "nothing-here", "--out", str(tmp_path)]) == 1

    def test_report_rejects_foreign_bench_schema(self, tmp_path, capsys):
        foreign = tmp_path / "BENCH_engine.json"
        foreign.write_text(json.dumps({"benchmark": "engine-vs-scalar", "aggregate": {}}))
        assert cli_main(["report", str(foreign)]) == 1
        assert "not a sweep BENCH file" in capsys.readouterr().err

    def test_run_rejects_bad_overrides_cleanly(self, tmp_path, capsys):
        assert cli_main(["run", "smoke", "--repeats", "0", "--out", str(tmp_path)]) == 1
        assert "repeats" in capsys.readouterr().err
        assert not (tmp_path / "BENCH_smoke.json").exists()
        assert cli_main(["run", "no-such-sweep", "--out", str(tmp_path)]) == 1

    def test_run_exits_nonzero_when_a_solve_fails(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.cli as cli_module

        def failing_run_sweep(spec, workers=1, out_dir=".", max_failures=None, resume=False, trace=None, profile_dir=None):
            payload = {
                "workers": workers,
                "rows": [],
                "timings": [],
                "aggregate": {
                    "runs": 2,
                    "successes": 1,
                    "errors": 0,
                    "success_rate": 0.5,
                    "strategies": {},
                    "query_totals": {},
                    "wall_time_seconds": 0.0,
                },
            }
            return str(tmp_path / "BENCH_broken.json"), payload

        monkeypatch.setattr(cli_module, "run_sweep", failing_run_sweep)
        assert cli_module.main(["run", "smoke", "--out", str(tmp_path)]) == 1
        assert "FAILED" in capsys.readouterr().err
