"""Tests for the Abelian HSP engine (Theorem 3) and the Cheung--Mosca decomposition (Theorem 1)."""

import math

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance, random_abelian_hsp_instance
from repro.blackbox.oracle import QueryCounter
from repro.groups.abelian import AbelianTupleGroup, cyclic_group, elementary_abelian_group
from repro.groups.extraspecial import extraspecial_group
from repro.hsp.abelian import solve_abelian_hsp, solve_hsp_in_abelian_group
from repro.hsp.decomposition import decompose_abelian_group
from repro.hsp.oracles import linear_kernel_of_power_product, power_product_oracle
from repro.linalg.zmodule import subgroup_order
from repro.quantum.sampling import FourierSampler, SubgroupStructureOracle, TupleFunctionOracle


class TestSolveAbelianHSP:
    @pytest.mark.parametrize(
        "moduli,hidden",
        [
            ([8], [(2,)]),
            ([8], [(0,)]),
            ([8], [(1,)]),
            ([2, 2, 2, 2], [(1, 1, 0, 0), (0, 0, 1, 1)]),   # Simon's problem
            ([8, 9], [(2, 3)]),
            ([4, 6, 5], [(2, 0, 0), (0, 3, 0)]),
            ([16, 27], [(4, 9)]),
        ],
    )
    def test_known_hidden_subgroups(self, moduli, hidden, rng):
        oracle = SubgroupStructureOracle(moduli, hidden)
        result = solve_abelian_hsp(oracle, sampler=FourierSampler(rng=rng))
        module = oracle.module
        assert module.subgroups_equal(result.generators or [module.identity()], hidden)
        assert result.subgroup_order == subgroup_order(hidden, moduli)

    def test_statevector_and_analytic_agree(self, rng):
        moduli = [4, 6]
        hidden = [(2, 3)]
        oracle_a = SubgroupStructureOracle(moduli, hidden)
        oracle_b = SubgroupStructureOracle(moduli, hidden)
        result_a = solve_abelian_hsp(oracle_a, sampler=FourierSampler("analytic", rng=rng))
        result_b = solve_abelian_hsp(oracle_b, sampler=FourierSampler("statevector", rng=rng))
        assert result_a.generators == result_b.generators

    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        moduli = [int(rng.choice([2, 3, 4, 5, 8, 9, 16])) for _ in range(int(rng.integers(1, 4)))]
        instance = random_abelian_hsp_instance(moduli, rng)
        result = solve_hsp_in_abelian_group(instance.group.group, instance.oracle, FourierSampler(rng=rng))
        assert instance.verify(result.generators or [instance.group.identity()])

    def test_large_group_with_declared_structure(self, rng):
        """The analytic backend scales to groups far beyond enumeration."""
        moduli = [2**12, 3**7, 5**5]
        group = AbelianTupleGroup(moduli)
        hidden = [(2**5, 3**2, 5), (0, 3**4, 0)]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = solve_hsp_in_abelian_group(group, instance.oracle, FourierSampler("analytic", rng=rng))
        assert instance.verify(result.generators)
        assert result.query_report["classical_queries"] == 0

    def test_query_counts_are_logarithmic(self, rng):
        moduli = [2**10, 2**10]
        oracle = SubgroupStructureOracle(moduli, [(4, 8)])
        result = solve_abelian_hsp(oracle, sampler=FourierSampler("analytic", rng=rng))
        assert result.rounds <= 4 * (20 + 12)
        assert result.query_report["quantum_queries"] == result.rounds

    def test_function_oracle_without_declared_kernel(self, rng):
        # Hidden subgroup of f(x) = x mod 3 on Z_12 is <3>.
        oracle = TupleFunctionOracle([12], lambda x: x[0] % 3)
        result = solve_abelian_hsp(oracle, sampler=FourierSampler(rng=rng))
        module = oracle.module
        assert module.subgroups_equal(result.generators, [(3,)])


class TestPowerProductOracles:
    def test_linear_kernel_matches_bruteforce(self):
        group = AbelianTupleGroup([4, 6])
        elements = [(2, 0), (2, 3)]
        orders = [group.element_order(e) for e in elements]
        kernel = linear_kernel_of_power_product(group, elements, orders)
        module_orders = orders
        from repro.linalg.zmodule import ZModule

        domain = ZModule(module_orders)
        expected = [
            alpha
            for alpha in domain.elements()
            if group.is_identity(
                group.multiply(group.power(elements[0], alpha[0]), group.power(elements[1], alpha[1]))
            )
        ]
        kernel_elements = domain.subgroup_elements(kernel)
        assert sorted(kernel_elements) == sorted(expected)

    def test_power_product_oracle_declares_kernel_for_abelian(self):
        group = AbelianTupleGroup([8])
        oracle = power_product_oracle(group, [(2,)], [4])
        assert oracle.kernel_generators() is not None

    def test_power_product_oracle_nonabelian_enumerates(self, rng):
        group = extraspecial_group(3)
        x = ((1,), (0,), 0)
        z = ((0,), (0,), 1)
        oracle = power_product_oracle(group, [x, z], [3, 3])
        kernel = oracle.kernel_generators()
        # x and z are independent of order 3: kernel is trivial.
        assert all(all(v % 3 == 0 for v in k) for k in kernel)


class TestCheungMoscaDecomposition:
    @pytest.mark.parametrize(
        "moduli,expected_invariants",
        [
            ([12], [12]),
            ([4, 6], [2, 12]),
            ([4, 6, 5], [2, 60]),
            ([2, 2, 2], [2, 2, 2]),
            ([9, 27], [9, 27]),
        ],
    )
    def test_invariant_factors(self, moduli, expected_invariants, rng):
        group = AbelianTupleGroup(moduli)
        decomposition = decompose_abelian_group(group, sampler=FourierSampler(rng=rng))
        assert sorted(decomposition.invariant_factors) == sorted(expected_invariants)
        assert decomposition.group_order == group.order()

    def test_factor_elements_have_claimed_orders(self, rng):
        group = AbelianTupleGroup([8, 12, 5])
        decomposition = decompose_abelian_group(group, sampler=FourierSampler(rng=rng))
        for factor in decomposition.factors:
            assert group.element_order(factor.element) == factor.order

    def test_decomposition_of_subgroup(self, rng):
        group = AbelianTupleGroup([16, 9])
        decomposition = decompose_abelian_group(group, generators=[(4, 3)], sampler=FourierSampler(rng=rng))
        assert decomposition.group_order == group.element_order((4, 3))

    def test_decomposition_of_abelian_subgroup_of_nonabelian_group(self, rng):
        group = extraspecial_group(5)
        center = group.center_generators()
        decomposition = decompose_abelian_group(group, generators=center, sampler=FourierSampler(rng=rng))
        assert decomposition.group_order == 5
        assert decomposition.invariant_factors == [5]

    def test_rejects_noncommuting_generators(self, rng):
        group = extraspecial_group(3)
        with pytest.raises(ValueError):
            decompose_abelian_group(group, generators=group.generators(), sampler=FourierSampler(rng=rng))

    def test_trivial_group(self, rng):
        group = cyclic_group(5)
        decomposition = decompose_abelian_group(group, generators=[(0,)], sampler=FourierSampler(rng=rng))
        assert decomposition.group_order == 1
        assert decomposition.factors == []

    def test_sylow_orders(self, rng):
        group = AbelianTupleGroup([8, 9, 5])
        decomposition = decompose_abelian_group(group, sampler=FourierSampler(rng=rng))
        assert decomposition.sylow_subgroup_orders() == {2: 8, 3: 9, 5: 5}
        assert sorted(decomposition.prime_power_orders()) == [5, 8, 9]

    def test_elementary_abelian(self, rng):
        group = elementary_abelian_group(3, 3)
        decomposition = decompose_abelian_group(group, sampler=FourierSampler(rng=rng))
        assert decomposition.invariant_factors == [3, 3, 3]
