"""Unit tests for permutation groups and the Schreier--Sims chain."""

import math

import numpy as np
import pytest

from repro.groups.base import GroupError
from repro.groups.perm import (
    PermutationGroup,
    SchreierSims,
    alternating_group,
    compose,
    cycle_decomposition,
    cyclic_permutation_group,
    dihedral_group,
    invert,
    permutation_from_cycles,
    permutation_order,
    permutation_sign,
    symmetric_group,
)


class TestPermutationPrimitives:
    def test_compose_applies_right_first(self):
        p = (1, 2, 0)  # 0->1->2->0
        q = (0, 2, 1)  # swap 1,2
        assert compose(p, q) == (1, 0, 2)

    def test_invert(self):
        p = (2, 0, 1)
        assert compose(p, invert(p)) == (0, 1, 2)
        assert compose(invert(p), p) == (0, 1, 2)

    def test_from_cycles(self):
        assert permutation_from_cycles(4, [(0, 1, 2)]) == (1, 2, 0, 3)
        assert permutation_from_cycles(3, []) == (0, 1, 2)

    def test_from_cycles_out_of_range(self):
        with pytest.raises(GroupError):
            permutation_from_cycles(3, [(0, 5)])

    def test_cycle_decomposition_roundtrip(self):
        p = permutation_from_cycles(6, [(0, 1, 2), (3, 4)])
        cycles = cycle_decomposition(p)
        assert sorted(len(c) for c in cycles) == [2, 3]
        assert permutation_from_cycles(6, cycles) == p

    def test_order_is_lcm_of_cycles(self):
        p = permutation_from_cycles(7, [(0, 1, 2), (3, 4)])
        assert permutation_order(p) == 6
        assert permutation_order(tuple(range(5))) == 1

    def test_sign(self):
        assert permutation_sign(permutation_from_cycles(4, [(0, 1)])) == -1
        assert permutation_sign(permutation_from_cycles(4, [(0, 1, 2)])) == 1


class TestSchreierSims:
    @pytest.mark.parametrize("n,expected", [(3, 6), (4, 24), (5, 120), (6, 720), (7, 5040)])
    def test_symmetric_group_orders(self, n, expected):
        assert symmetric_group(n).order() == expected

    @pytest.mark.parametrize("n,expected", [(3, 3), (4, 12), (5, 60), (6, 360)])
    def test_alternating_group_orders(self, n, expected):
        assert alternating_group(n).order() == expected

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_dihedral_and_cyclic_orders(self, n):
        assert dihedral_group(n).order() == 2 * n
        assert cyclic_permutation_group(n).order() == n

    def test_membership_sifting(self):
        a5 = alternating_group(5)
        even = permutation_from_cycles(5, [(0, 1, 2)])
        odd = permutation_from_cycles(5, [(0, 1)])
        assert a5.contains_permutation(even)
        assert not a5.contains_permutation(odd)

    def test_membership_wrong_degree(self):
        s4 = symmetric_group(4)
        assert not s4.chain.contains((1, 0, 2))

    def test_uniform_random_elements_are_members(self, rng):
        group = dihedral_group(7)
        for _ in range(20):
            g = group.uniform_random_element(rng)
            assert group.contains_permutation(g)

    def test_random_element_distribution_covers_group(self, rng):
        group = cyclic_permutation_group(5)
        seen = {group.uniform_random_element(rng) for _ in range(200)}
        assert len(seen) == 5

    def test_chain_of_trivial_group(self):
        chain = SchreierSims([], 4)
        assert chain.order() == 1
        assert chain.contains((0, 1, 2, 3))
        assert not chain.contains((1, 0, 2, 3))


class TestPermutationGroupInterface:
    def test_group_axioms_on_samples(self, rng):
        group = symmetric_group(5)
        for _ in range(10):
            a = group.uniform_random_element(rng)
            b = group.uniform_random_element(rng)
            c = group.uniform_random_element(rng)
            assert group.multiply(group.multiply(a, b), c) == group.multiply(a, group.multiply(b, c))
            assert group.multiply(a, group.inverse(a)) == group.identity()

    def test_element_order_override(self):
        group = symmetric_group(6)
        p = permutation_from_cycles(6, [(0, 1, 2), (3, 4)])
        assert group.element_order(p) == 6

    def test_invalid_generator_rejected(self):
        with pytest.raises(GroupError):
            PermutationGroup([(0, 0, 1)])

    def test_degree_required_for_trivial(self):
        with pytest.raises(GroupError):
            PermutationGroup([])

    def test_encode_decode_roundtrip(self):
        group = symmetric_group(5)
        p = permutation_from_cycles(5, [(0, 3, 2)])
        assert group.decode(group.encode(p)) == p

    def test_is_transitive(self):
        assert symmetric_group(4).is_transitive()
        intransitive = PermutationGroup([permutation_from_cycles(4, [(0, 1)])], degree=4)
        assert not intransitive.is_transitive()

    def test_power_and_commutator(self):
        group = dihedral_group(5)
        r, s = group.generators()
        assert group.power(r, 5) == group.identity()
        assert group.power(r, -1) == group.inverse(r)
        # srs^-1 = r^-1 in the dihedral group
        assert group.conjugate(s, r) == group.inverse(r)

    def test_exponent_bound_is_multiple_of_orders(self, rng):
        group = symmetric_group(5)
        bound = group.exponent_bound()
        for _ in range(10):
            g = group.uniform_random_element(rng)
            assert bound % permutation_order(g) == 0
