"""Tests for Abelian factor-group presentations and their relator properties."""

import pytest

from repro.blackbox.instances import hiding_oracle_from_subgroup
from repro.core.factor_group import HiddenQuotient
from repro.core.presentation import AbelianPresentation
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import alternating_group, symmetric_group
from repro.groups.products import dihedral_semidirect, wreath_product_z2
from repro.groups.subgroup import generate_subgroup_elements, make_membership_tester, normal_closure
from repro.quantum.sampling import FourierSampler


class TestAbelianPresentationObject:
    def test_quotient_order_without_relations(self):
        presentation = AbelianPresentation(generators=[(1,)], orders=[6], relation_vectors=[])
        assert presentation.quotient_order() == 6
        assert presentation.rank == 1

    def test_quotient_order_with_relations(self):
        # Z_4 x Z_4 modulo the relation (2, 2) has order 8.
        presentation = AbelianPresentation(
            generators=[(1, 0), (0, 1)], orders=[4, 4], relation_vectors=[(2, 2)]
        )
        assert presentation.quotient_order() == 8

    def test_power_relators_include_order_relators(self):
        group = AbelianTupleGroup([8, 9])
        presentation = AbelianPresentation(generators=[(1, 0), (0, 1)], orders=[2, 3], relation_vectors=[])
        relators = presentation.substituted_power_relators(group)
        assert (2, 0) in relators and (0, 3) in relators

    def test_commutator_relators_empty_for_commuting_lifts(self):
        group = AbelianTupleGroup([4, 4])
        presentation = AbelianPresentation(generators=[(1, 0), (0, 1)], orders=[4, 4])
        assert presentation.substituted_commutator_relators(group) == []

    def test_commutator_relators_nontrivial_for_noncommuting_lifts(self):
        group = extraspecial_group(3)
        x, y = group.generators()
        presentation = AbelianPresentation(generators=[x, y], orders=[3, 3])
        commutators = presentation.substituted_commutator_relators(group)
        assert len(commutators) == 1
        assert not group.is_identity(commutators[0])

    def test_empty_presentation(self):
        group = AbelianTupleGroup([5])
        presentation = AbelianPresentation(generators=[], orders=[])
        assert presentation.quotient_order() == 1
        assert presentation.relator_elements(group) == []


class TestPresentationsFromHiddenQuotients:
    @pytest.mark.parametrize(
        "group_builder,hidden_builder,expected_quotient_order",
        [
            (lambda: symmetric_group(4), lambda g: alternating_group(4).generators(), 2),
            (lambda: dihedral_semidirect(9), lambda g: [g.embed_normal((1,))], 2),
            (lambda: extraspecial_group(3), lambda g: g.center_generators(), 9),
            (lambda: wreath_product_z2(2), lambda g: g.normal_part_generators(), 2),
        ],
    )
    def test_relators_lie_in_hidden_subgroup(self, group_builder, hidden_builder, expected_quotient_order, rng):
        group = group_builder()
        hidden = hidden_builder(group)
        oracle = hiding_oracle_from_subgroup(group, hidden)
        quotient = HiddenQuotient(group, oracle)
        presentation = quotient.abelian_presentation(sampler=FourierSampler(rng=rng))
        assert presentation.quotient_order() == expected_quotient_order
        member = make_membership_tester(group, hidden)
        for relator in presentation.relator_elements(group):
            assert member(relator)

    def test_relator_normal_closure_recovers_subgroup(self, rng):
        """The Theorem 8 core identity: <<relators>> = N for Abelian G/N."""
        group = dihedral_semidirect(10)
        hidden = [group.embed_normal((1,))]
        oracle = hiding_oracle_from_subgroup(group, hidden)
        quotient = HiddenQuotient(group, oracle)
        presentation = quotient.abelian_presentation(sampler=FourierSampler(rng=rng))
        relators = presentation.relator_elements(group)
        # plus generators of G already in N (the S_0 correction of Theorem 8)
        relators += [g for g in group.generators() if quotient.in_kernel(g) and not group.is_identity(g)]
        closure = normal_closure(group, [r for r in relators if not group.is_identity(r)])
        assert sorted(generate_subgroup_elements(group, closure)) == sorted(
            generate_subgroup_elements(group, hidden)
        )

    def test_presentation_generators_exclude_kernel_elements(self, rng):
        group = dihedral_semidirect(6)
        oracle = hiding_oracle_from_subgroup(group, [group.embed_normal((1,))])
        quotient = HiddenQuotient(group, oracle)
        presentation = quotient.abelian_presentation(sampler=FourierSampler(rng=rng))
        for generator in presentation.generators:
            assert not quotient.in_kernel(generator)

    def test_orders_match_quotient_orders(self, rng):
        group = extraspecial_group(5)
        oracle = hiding_oracle_from_subgroup(group, group.center_generators())
        quotient = HiddenQuotient(group, oracle)
        presentation = quotient.abelian_presentation(sampler=FourierSampler(rng=rng))
        for generator, order in zip(presentation.generators, presentation.orders):
            assert quotient.order_modulo(generator) == order
            assert order == 5
