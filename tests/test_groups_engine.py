"""Property-based tests for the vectorized Cayley-table group engine.

Three families of invariants:

* **interning is a bijection** — ids round-trip through ``element_of`` and
  distinct elements receive distinct ids;
* **engine arithmetic agrees with scalar group arithmetic** — ``mul_many``,
  ``inv_many``, ``conj_many``, ``power``, ``element_order``, subgroup and
  commutator closures all reproduce the per-element ``FiniteGroup`` results,
  in both the dense-table and the sparse fallback mode;
* **batch oracle accounting** — the bulk APIs on ``BlackBoxGroup`` and
  ``HidingOracle`` report exactly the totals of the equivalent scalar loops.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.blackbox.instances import HSPInstance
from repro.blackbox.oracle import BlackBoxGroup, HidingOracle, QueryCounter
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.base import FiniteGroup, GroupError
from repro.groups.engine import CayleyBackend, get_engine, maybe_engine
from repro.groups.extraspecial import extraspecial_group
from repro.groups.products import dihedral_semidirect
from repro.groups.subgroup import generate_subgroup_elements
from repro.groups.perm import symmetric_group

settings.register_profile(
    "repro_engine", deadline=None, max_examples=30, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro_engine")


def heisenberg_elements(p=3, n=1):
    coord = st.integers(min_value=0, max_value=p - 1)
    vec = st.tuples(*([coord] * n))
    return st.tuples(vec, vec, coord)


@pytest.fixture(scope="module")
def table_engine():
    return CayleyBackend(extraspecial_group(3))


@pytest.fixture(scope="module")
def sparse_engine():
    # Order 27 forced under a tiny table limit: exercises the fallback mode.
    return CayleyBackend(extraspecial_group(3), table_limit=4)


class TestInterning:
    @given(st.lists(heisenberg_elements(), min_size=1, max_size=24))
    def test_interning_round_trips(self, elements):
        engine = CayleyBackend(extraspecial_group(3))
        ids = engine.intern_many(elements)
        assert engine.elements_of(ids) == elements

    @given(st.lists(heisenberg_elements(), min_size=2, max_size=24))
    def test_interning_is_injective(self, elements):
        engine = CayleyBackend(extraspecial_group(3))
        ids = [engine.intern(e) for e in elements]
        for a, id_a in zip(elements, ids):
            for b, id_b in zip(elements, ids):
                assert (id_a == id_b) == (a == b)

    def test_table_mode_interns_whole_group(self, table_engine):
        assert table_engine.mode == "table"
        assert table_engine.interned_count == 27

    def test_table_mode_rejects_foreign_elements(self):
        engine = CayleyBackend(extraspecial_group(3))
        with pytest.raises(GroupError):
            engine.intern(((5,), (0,), 0))  # coordinates outside Z_3


class TestArithmeticAgreement:
    @pytest.mark.parametrize("mode", ["table", "sparse"])
    @given(data=st.data())
    def test_mul_many_agrees_with_scalar_op(self, mode, data):
        group = extraspecial_group(3)
        engine = CayleyBackend(group, table_limit=4 if mode == "sparse" else 4096)
        assert engine.mode == mode
        pairs = data.draw(
            st.lists(st.tuples(heisenberg_elements(), heisenberg_elements()), min_size=1, max_size=16)
        )
        elements_a = [a for a, _ in pairs]
        elements_b = [b for _, b in pairs]
        got = engine.multiply_elements(elements_a, elements_b)
        assert got == [group.multiply(a, b) for a, b in zip(elements_a, elements_b)]

    @pytest.mark.parametrize("mode", ["table", "sparse"])
    @given(elements=st.lists(heisenberg_elements(), min_size=1, max_size=16))
    def test_inv_many_agrees_with_scalar_inverse(self, mode, elements):
        group = extraspecial_group(3)
        engine = CayleyBackend(group, table_limit=4 if mode == "sparse" else 4096)
        assert engine.inverse_elements(elements) == [group.inverse(a) for a in elements]

    @given(data=st.data())
    def test_conj_many_agrees_with_scalar_conjugate(self, data):
        group = extraspecial_group(3)
        engine = CayleyBackend(group)
        pairs = data.draw(
            st.lists(st.tuples(heisenberg_elements(), heisenberg_elements()), min_size=1, max_size=16)
        )
        ids_g = engine.intern_many([g for g, _ in pairs])
        ids_h = engine.intern_many([h for _, h in pairs])
        got = engine.elements_of(engine.conj_many(ids_g, ids_h))
        assert got == [group.conjugate(g, h) for g, h in pairs]

    @given(element=heisenberg_elements(), exponent=st.integers(min_value=-12, max_value=12))
    def test_power_and_order_agree(self, element, exponent):
        group = extraspecial_group(3)
        engine = CayleyBackend(group)
        assert engine.element_of(engine.power(engine.intern(element), exponent)) == group.power(
            element, exponent
        )
        scalar_group = extraspecial_group(3)  # no engine installed: scalar path
        assert engine.element_order(engine.intern(element)) == FiniteGroup.element_order(
            scalar_group, element
        )

    @pytest.mark.parametrize("mode", ["table", "sparse"])
    @given(generators=st.lists(heisenberg_elements(), min_size=1, max_size=3))
    def test_subgroup_closure_agrees_with_bfs(self, mode, generators):
        group = extraspecial_group(3)
        engine = CayleyBackend(group, table_limit=4 if mode == "sparse" else 4096)
        got = set(engine.elements_of(engine.subgroup_ids(engine.intern_many(generators))))
        assert got == set(generate_subgroup_elements(group, generators))

    @pytest.mark.parametrize(
        "group_factory",
        [lambda: extraspecial_group(3), lambda: dihedral_semidirect(9), lambda: symmetric_group(4)],
    )
    def test_structure_queries_agree(self, group_factory):
        group = group_factory()
        engine = CayleyBackend(group)
        assert engine.is_abelian() == group.is_abelian()
        from repro.groups.subgroup import commutator_subgroup_generators

        want = set(generate_subgroup_elements(group, commutator_subgroup_generators(group)))
        assert set(engine.commutator_subgroup_elements()) == want

    def test_fallback_mode_agrees_with_table_mode(self):
        group = extraspecial_group(3)
        table = CayleyBackend(group)
        sparse = CayleyBackend(group, table_limit=4)
        elements = group.element_list()
        for a in elements[:9]:
            for b in elements[:9]:
                want = group.multiply(a, b)
                assert table.element_of(table.mul(table.intern(a), table.intern(b))) == want
                assert sparse.element_of(sparse.mul(sparse.intern(a), sparse.intern(b))) == want

    def test_coset_label_constant_exactly_on_left_cosets(self):
        group = extraspecial_group(3)
        engine = CayleyBackend(group)
        hidden = [((1,), (0,), 0)]
        subgroup_ids = engine.subgroup_ids(engine.intern_many(hidden))
        subgroup = set(engine.elements_of(subgroup_ids))
        labels = {}
        for x in group.element_list():
            labels.setdefault(engine.coset_label(engine.intern(x), subgroup_ids), []).append(x)
        assert len(labels) == group.order() // len(subgroup)
        for members in labels.values():
            base = members[0]
            coset = {group.multiply(base, h) for h in subgroup}
            assert set(members) == coset


class TestEngineInstallation:
    def test_maybe_engine_unwraps_black_box(self):
        group = extraspecial_group(3)
        wrapped = BlackBoxGroup(group)
        engine = maybe_engine(wrapped)
        assert engine is not None and engine.group is group
        assert getattr(group, "_cayley_engine", None) is engine

    def test_maybe_engine_declines_unknown_order(self):
        class OpaqueGroup(FiniteGroup):
            name = "opaque"

            def identity(self):
                return 0

            def multiply(self, a, b):
                return (a + b) % 97

            def inverse(self, a):
                return (-a) % 97

            def generators(self):
                return [1]

        assert maybe_engine(OpaqueGroup()) is None

    def test_get_engine_is_idempotent(self):
        group = extraspecial_group(3)
        assert get_engine(group) is get_engine(group)

    def test_installed_engine_accelerates_default_batch_ops(self):
        group = extraspecial_group(3)
        elements = group.element_list()[:6]
        scalar = [group.multiply(a, b) for a, b in zip(elements, reversed(elements))]
        get_engine(group)
        assert group.multiply_many(elements, list(reversed(elements))) == scalar
        assert group.inverse_many(elements) == [group.inverse(a) for a in elements]


class TestBatchCounterConsistency:
    def test_multiply_many_counts_like_scalar_loop(self):
        group = extraspecial_group(3)
        elements = group.element_list()[:8]
        scalar_box = BlackBoxGroup(extraspecial_group(3), QueryCounter())
        for a, b in zip(elements, reversed(elements)):
            scalar_box.multiply(a, b)
        batch_box = BlackBoxGroup(extraspecial_group(3), QueryCounter())
        batch_box.multiply_many(elements, list(reversed(elements)))
        assert batch_box.counter.snapshot() == scalar_box.counter.snapshot()

    def test_inverse_many_counts_like_scalar_loop(self):
        group = extraspecial_group(3)
        elements = group.element_list()[:8]
        scalar_box = BlackBoxGroup(extraspecial_group(3), QueryCounter())
        for a in elements:
            scalar_box.inverse(a)
        batch_box = BlackBoxGroup(extraspecial_group(3), QueryCounter())
        batch_box.inverse_many(elements)
        assert batch_box.counter.snapshot() == scalar_box.counter.snapshot()

    def test_multiply_many_rejects_length_mismatch(self):
        box = BlackBoxGroup(extraspecial_group(3))
        with pytest.raises(ValueError):
            box.multiply_many([box.identity()], [])

    @given(
        st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=30),
    )
    def test_evaluate_many_counts_like_scalar_loop(self, queries):
        group = AbelianTupleGroup([8])
        elements = [(q,) for q in queries]

        def label(x):
            return x[0] % 4

        scalar = HidingOracle(label, QueryCounter())
        scalar_values = [scalar(x) for x in elements]
        batch = HidingOracle(label, QueryCounter())
        batch_values = batch.evaluate_many(elements)
        assert batch_values == scalar_values
        assert batch.counter.snapshot() == scalar.counter.snapshot()
        # Distinct uncached elements are counted exactly once each.
        assert batch.counter.classical_queries == len(set(queries))

    def test_quantum_query_bulk_counting(self):
        oracle = HidingOracle(lambda x: 0, QueryCounter())
        oracle.quantum_query()
        oracle.quantum_query(5)
        assert oracle.counter.quantum_queries == 6

    def test_counted_group_totals_match_when_commutator_is_enumerated(self):
        """No promise: G' enumeration on a counted group must count identically."""
        from repro.blackbox.instances import hiding_oracle_from_subgroup
        from repro.core.small_commutator import solve_hsp_small_commutator
        from repro.quantum.sampling import FourierSampler

        reports = {}
        for use_engine in (False, True):
            base = extraspecial_group(3)
            box = BlackBoxGroup(base, QueryCounter())
            oracle = hiding_oracle_from_subgroup(base, [((1,), (1,), 0)], counter=box.counter)
            result = solve_hsp_small_commutator(
                box,
                oracle,
                sampler=FourierSampler(backend="statevector", rng=np.random.default_rng(20010202)),
                use_engine=use_engine,
            )
            reports[use_engine] = result.query_report
        assert reports[True] == reports[False]

    def test_analytic_batch_sampling_survives_int64_overflowing_moduli(self):
        """Moduli >= 2^63 must reach the exact big-integer fallback, not crash."""
        from repro.quantum.sampling import FourierSampler, SubgroupStructureOracle

        oracle = SubgroupStructureOracle([1 << 64], [(0,)])
        sampler = FourierSampler(backend="analytic", rng=np.random.default_rng(5), batch=True)
        samples = sampler.sample(oracle, 4)
        assert len(samples) == 4
        assert all(0 <= s[0] < (1 << 64) for s in samples)
        assert oracle.counter.quantum_queries == 4

    def test_engine_and_scalar_solvers_report_identical_totals(self):
        """End-to-end: Theorem 11 with and without the engine, same queries."""
        from repro.core.small_commutator import solve_hsp_small_commutator
        from repro.quantum.sampling import FourierSampler

        reports = {}
        for use_engine in (False, True):
            group = extraspecial_group(3)
            instance = HSPInstance.from_subgroup(group, [((1,), (1,), 0)])
            rng = np.random.default_rng(20010202)
            result = solve_hsp_small_commutator(
                group,
                instance.oracle.fresh_view(),
                sampler=FourierSampler(backend="statevector", rng=rng, batch=use_engine),
                commutator_elements=group.commutator_subgroup_elements(),
                use_engine=use_engine,
            )
            assert instance.verify(result.generators or [group.identity()])
            reports[use_engine] = result.query_report
        assert reports[True] == reports[False]
