"""Unit tests for the black-box group model and HSP instances."""

import numpy as np
import pytest

from repro.blackbox.instances import (
    HSPInstance,
    hiding_oracle_from_subgroup,
    random_abelian_hsp_instance,
    subgroup_coset_label,
)
from repro.blackbox.oracle import BlackBoxGroup, HidingOracle, QueryCounter
from repro.groups.abelian import AbelianTupleGroup
from repro.groups.extraspecial import extraspecial_group
from repro.groups.perm import symmetric_group
from repro.groups.products import dihedral_semidirect
from repro.groups.subgroup import generate_subgroup_elements


class TestQueryCounter:
    def test_snapshot_and_reset(self):
        counter = QueryCounter()
        counter.classical_queries += 3
        counter.bump("order_oracle_calls", 2)
        snap = counter.snapshot()
        assert snap["classical_queries"] == 3
        assert snap["order_oracle_calls"] == 2
        counter.reset()
        assert counter.snapshot()["classical_queries"] == 0
        assert counter.extra == {}

    def test_addition_merges(self):
        a = QueryCounter(classical_queries=1, quantum_queries=2)
        a.bump("x")
        b = QueryCounter(classical_queries=4)
        b.bump("x", 2)
        b.bump("y")
        merged = a + b
        assert merged.classical_queries == 5
        assert merged.quantum_queries == 2
        assert merged.extra == {"x": 3, "y": 1}


class TestBlackBoxGroup:
    def test_operations_counted(self):
        group = BlackBoxGroup(dihedral_semidirect(5))
        a = group.generators()[0]
        group.multiply(a, a)
        group.inverse(a)
        group.equal(a, a)
        assert group.counter.group_multiplications == 1
        assert group.counter.group_inversions == 1
        assert group.counter.identity_tests == 1

    def test_delegates_structure(self):
        base = dihedral_semidirect(5)
        group = BlackBoxGroup(base)
        assert group.order() == 10
        assert group.identity() == base.identity()
        assert group.exponent_bound() == base.exponent_bound()
        assert group.encoding_length > 0

    def test_power_counts_multiplications(self):
        group = BlackBoxGroup(AbelianTupleGroup([64]))
        group.power((1,), 63)
        assert group.counter.group_multiplications > 0

    def test_random_element_is_member(self, rng):
        group = BlackBoxGroup(symmetric_group(4))
        for _ in range(5):
            g = group.uniform_random_element(rng)
            assert symmetric_group(4).contains_permutation(g)


class TestHidingOracle:
    def test_query_counting_with_cache(self):
        counter = QueryCounter()
        oracle = HidingOracle(lambda x: x % 3, counter=counter)
        assert oracle(4) == 1
        assert oracle(4) == 1  # cached, not re-counted
        assert oracle(5) == 2
        assert counter.classical_queries == 2

    def test_quantum_query_accounting(self):
        oracle = HidingOracle(lambda x: x)
        oracle.quantum_query()
        oracle.quantum_query()
        assert oracle.counter.quantum_queries == 2

    def test_fresh_view_shares_function_not_counts(self):
        oracle = HidingOracle(lambda x: x * 2, hidden_subgroup_generators=[(1,)])
        oracle(3)
        clone = oracle.fresh_view()
        assert clone(3) == 6
        assert clone.counter.classical_queries == 1
        assert oracle.counter.classical_queries == 1
        assert clone.hidden_subgroup_generators == [(1,)]


class TestCosetLabels:
    def test_abelian_label_is_polynomial_coset_invariant(self):
        group = AbelianTupleGroup([8, 9])
        label = subgroup_coset_label(group, [(2, 3)])
        module = group.module
        subgroup = module.subgroup_elements([(2, 3)])
        x = (5, 7)
        for h in subgroup:
            assert label(module.add(x, h)) == label(x)
        assert label((1, 0)) != label((0, 0))

    def test_generic_label_constant_on_left_cosets(self):
        group = dihedral_semidirect(5)
        hidden = [group.embed_quotient((1,))]
        label = subgroup_coset_label(group, hidden)
        subgroup = generate_subgroup_elements(group, hidden)
        g = group.embed_normal((2,))
        for h in subgroup:
            assert label(group.multiply(g, h)) == label(g)

    def test_generic_label_distinct_across_cosets(self):
        group = extraspecial_group(3)
        hidden = [((1,), (0,), 0)]
        label = subgroup_coset_label(group, hidden)
        subgroup = set(generate_subgroup_elements(group, hidden))
        labels = {label(g) for g in group.element_list()}
        assert len(labels) == group.order() // len(subgroup)


class TestHSPInstance:
    def test_from_subgroup_and_verify(self, rng):
        group = extraspecial_group(3)
        hidden = [((1,), (1,), 0)]
        instance = HSPInstance.from_subgroup(group, hidden, promises={"commutator_bound": 3})
        assert instance.verify(hidden)
        assert instance.verify(generate_subgroup_elements(group, hidden))
        assert not instance.verify([((0,), (1,), 0)])
        assert instance.promises["commutator_bound"] == 3

    def test_verify_requires_ground_truth(self):
        group = AbelianTupleGroup([4])
        oracle = hiding_oracle_from_subgroup(group, [(2,)])
        instance = HSPInstance(group=BlackBoxGroup(group), oracle=oracle, hidden_generators=None)
        with pytest.raises(ValueError):
            instance.verify([(2,)])

    def test_query_report_merges_counters(self):
        group = AbelianTupleGroup([6])
        instance = HSPInstance.from_subgroup(group, [(2,)])
        instance.oracle((1,))
        instance.group.multiply((1,), (2,))
        report = instance.query_report()
        assert report["classical_queries"] == 1
        assert report["group_multiplications"] == 1

    def test_random_abelian_instance(self, rng):
        instance = random_abelian_hsp_instance([16, 9], rng)
        assert instance.verify(instance.hidden_generators)
        # the oracle is constant on the hidden subgroup
        label0 = instance.oracle((0, 0))
        for g in instance.hidden_generators:
            assert instance.oracle(tuple(g)) == label0


class TestCounterMergeRoundTrip:
    """Snapshot → from_snapshot → merge: the experiment-harness contract."""

    def _counter(self):
        counter = QueryCounter(
            classical_queries=3,
            quantum_queries=5,
            group_multiplications=7,
            group_inversions=2,
            identity_tests=11,
        )
        counter.bump("theorem11_retries", 4)
        return counter

    def test_snapshot_round_trip_preserves_every_field(self):
        counter = self._counter()
        rebuilt = QueryCounter.from_snapshot(counter.snapshot())
        assert rebuilt == counter
        assert rebuilt.snapshot() == counter.snapshot()

    def test_round_trip_through_json(self):
        import json

        counter = self._counter()
        rebuilt = QueryCounter.from_snapshot(json.loads(json.dumps(counter.snapshot())))
        assert rebuilt.snapshot() == counter.snapshot()

    def test_sum_merges_like_pairwise_addition(self):
        counters = [self._counter() for _ in range(3)]
        counters[1].bump("order_oracle_calls", 2)
        merged = sum(counters, QueryCounter())
        assert merged.quantum_queries == 15
        assert merged.extra["theorem11_retries"] == 12
        assert merged.extra["order_oracle_calls"] == 2

    def test_sum_without_start_uses_radd(self):
        merged = sum([self._counter(), self._counter()])
        assert merged.classical_queries == 6

    def test_merged_totals_equal_sum_of_reports(self):
        a, b = self._counter(), QueryCounter(quantum_queries=1)
        merged = (QueryCounter.from_snapshot(a.snapshot()) + QueryCounter.from_snapshot(b.snapshot())).snapshot()
        for key in set(a.snapshot()) | set(b.snapshot()):
            assert merged[key] == a.snapshot().get(key, 0) + b.snapshot().get(key, 0)
