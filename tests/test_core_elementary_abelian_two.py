"""Tests for the elementary-Abelian-normal-2-subgroup solver (Theorem 13)."""

import numpy as np
import pytest

from repro.blackbox.instances import HSPInstance
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.groups.base import GroupError
from repro.groups.catalog import (
    affine_gf2_instance,
    elementary_abelian_semidirect_instance,
    wreath_instance,
)
from repro.groups.abelian import elementary_abelian_group
from repro.groups.products import generalized_dihedral
from repro.quantum.sampling import FourierSampler


def solve_and_verify(group, normal_gens, hidden_generators, rng, **kwargs):
    instance = HSPInstance.from_subgroup(group, hidden_generators)
    result = solve_hsp_elementary_abelian_two(
        group, instance.oracle, normal_gens, sampler=FourierSampler(rng=rng), **kwargs
    )
    assert instance.verify(result.generators or [group.identity()]), result.generators
    return result


class TestWreathProducts:
    """The Rötteler--Beth family, now as a special case of Theorem 13."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_random_hidden_subgroups(self, k, rng):
        group, normal_gens = wreath_instance(k)
        for _ in range(3):
            hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
            result = solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)
            assert result.cyclic_path

    def test_subgroup_inside_base(self, rng):
        group, normal_gens = wreath_instance(2)
        hidden = [group.embed_normal((1, 0, 1, 0)), group.embed_normal((0, 1, 0, 1))]
        result = solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)
        assert result.coset_generators == []

    def test_subgroup_meeting_swap_coset(self, rng):
        group, normal_gens = wreath_instance(2)
        hidden = [((1, 1, 0, 0), (1,))]
        result = solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)
        assert result.coset_generators

    def test_trivial_subgroup(self, rng):
        group, normal_gens = wreath_instance(2)
        result = solve_and_verify(group, normal_gens, [group.identity()], rng, cyclic_quotient=True)
        assert result.generators == []

    def test_cyclic_quotient_autodetected(self, rng):
        group, normal_gens = wreath_instance(2)
        hidden = [group.uniform_random_element(rng)]
        result = solve_and_verify(group, normal_gens, hidden, rng)
        assert result.cyclic_path


class TestAffineMatrixGroups:
    """The Section 6 matrix groups over GF(2) with cyclic factor group."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_cyclic_hidden_subgroups(self, k, rng):
        group, normal_gens = affine_gf2_instance(k)
        for _ in range(2):
            hidden = [group.random_element(rng)]
            result = solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)
            assert result.cyclic_path

    def test_translation_subgroups(self, rng):
        group, normal_gens = affine_gf2_instance(3)
        hidden = normal_gens[:1]
        solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)

    def test_whole_group(self, rng):
        group, normal_gens = affine_gf2_instance(2)
        solve_and_verify(group, normal_gens, group.generators(), rng, cyclic_quotient=True)


class TestGeneralCase:
    """Non-cyclic factor groups: running time polynomial in |G/N|."""

    @pytest.mark.parametrize("top", ["S3", "V4"])
    def test_semidirect_products(self, top, rng):
        group, normal_gens = elementary_abelian_semidirect_instance(4, top)
        for _ in range(2):
            hidden = [group.random_element(rng), group.random_element(rng)]
            result = solve_and_verify(
                group, normal_gens, hidden, rng, cyclic_quotient=False, quotient_bound=16
            )
            assert not result.cyclic_path
            assert result.representatives_used <= 16

    def test_generalized_dihedral_over_elementary_abelian(self, rng):
        # Dih(Z_2^3) = Z_2^3 : Z_2 with inversion action (trivial on an
        # elementary Abelian group, so this is just the direct product).
        group = generalized_dihedral([2, 2, 2])
        normal_gens = group.normal_part_generators()
        hidden = [group.random_element(rng)]
        solve_and_verify(group, normal_gens, hidden, rng, cyclic_quotient=True)

    def test_bound_violation_raises(self, rng):
        group, normal_gens = elementary_abelian_semidirect_instance(4, "S3")
        instance = HSPInstance.from_subgroup(group, [group.random_element(rng)])
        with pytest.raises(GroupError):
            solve_hsp_elementary_abelian_two(
                group,
                instance.oracle,
                normal_gens,
                sampler=FourierSampler(rng=rng),
                cyclic_quotient=False,
                quotient_bound=2,
            )


class TestValidation:
    def test_rejects_odd_order_normal_generators(self, rng):
        group = elementary_abelian_group(3, 2)
        instance = HSPInstance.from_subgroup(group, [(1, 0)])
        with pytest.raises(GroupError):
            solve_hsp_elementary_abelian_two(
                group, instance.oracle, [(1, 0)], sampler=FourierSampler(rng=rng)
            )

    def test_pure_elementary_abelian_group(self, rng):
        """Degenerate case G = N: a plain Simon instance."""
        group = elementary_abelian_group(2, 5)
        hidden = [(1, 1, 0, 0, 0), (0, 0, 1, 1, 0)]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = solve_hsp_elementary_abelian_two(
            group, instance.oracle, group.generators(), sampler=FourierSampler(rng=rng)
        )
        assert instance.verify(result.generators)

    def test_query_report_included(self, rng):
        group, normal_gens = wreath_instance(2)
        instance = HSPInstance.from_subgroup(group, [group.uniform_random_element(rng)])
        result = solve_hsp_elementary_abelian_two(
            group, instance.oracle, normal_gens, sampler=FourierSampler(rng=rng), cyclic_quotient=True
        )
        assert result.query_report["quantum_queries"] > 0


class TestEngineRouting:
    """The batched transversal/validation scans preserve results and counts.

    Theorem 13 now routes its coset scans through ``multiply_many`` like
    Theorems 8/11; with the engine disabled those batch calls degrade to the
    scalar loops, so generators and the full query report must be identical
    in both configurations.
    """

    def _solve(self, rng_seed=20010202):
        rng = np.random.default_rng(rng_seed)
        group, normal_gens = elementary_abelian_semidirect_instance(4, "S3")
        hidden = [group.random_element(rng)]
        instance = HSPInstance.from_subgroup(group, hidden)
        result = solve_hsp_elementary_abelian_two(
            group,
            instance.oracle,
            normal_gens,
            sampler=FourierSampler(rng=rng),
            cyclic_quotient=False,
            quotient_bound=1 << 8,
        )
        assert instance.verify(result.generators or [group.identity()])
        return result

    def test_general_path_engine_vs_scalar_parity(self):
        from repro.groups.engine import engine_disabled

        engine_result = self._solve()
        with engine_disabled():
            scalar_result = self._solve()
        assert engine_result.generators == scalar_result.generators
        assert engine_result.representatives_used == scalar_result.representatives_used
        assert engine_result.query_report == scalar_result.query_report

    def test_cyclic_path_engine_vs_scalar_parity(self):
        from repro.groups.engine import engine_disabled

        def run():
            rng = np.random.default_rng(20010202)
            group, normal_gens = wreath_instance(2)
            instance = HSPInstance.from_subgroup(group, [group.uniform_random_element(rng)])
            result = solve_hsp_elementary_abelian_two(
                group,
                instance.oracle,
                normal_gens,
                sampler=FourierSampler(rng=rng),
                cyclic_quotient=True,
            )
            assert instance.verify(result.generators or [group.identity()])
            return result

        engine_result = run()
        with engine_disabled():
            scalar_result = run()
        assert engine_result.generators == scalar_result.generators
        assert engine_result.query_report == scalar_result.query_report

    def test_validation_still_rejects_bad_normal_subgroups(self):
        group = elementary_abelian_group(3, 2)
        instance = HSPInstance.from_subgroup(group, [(1, 0)])
        with pytest.raises(GroupError, match="order dividing 2"):
            solve_hsp_elementary_abelian_two(
                group, instance.oracle, [(1, 0)], sampler=FourierSampler(rng=np.random.default_rng(0))
            )

    def test_validation_rejects_non_abelian_normal_part(self):
        group, _ = elementary_abelian_semidirect_instance(3, "S3")
        # Two non-commuting involutions of G (coordinate swaps composed with
        # the S3 part) violate the Abelianity requirement on N.
        instance = HSPInstance.from_subgroup(group, [group.identity()])
        gens = [g for g in group.generators() if group.is_identity(group.multiply(g, g))]
        if len(gens) >= 2 and not group.equal(
            group.multiply(gens[0], gens[1]), group.multiply(gens[1], gens[0])
        ):
            with pytest.raises(GroupError, match="Abelian"):
                solve_hsp_elementary_abelian_two(
                    group, instance.oracle, gens, sampler=FourierSampler(rng=np.random.default_rng(0))
                )
