"""Unit tests for the state-vector simulator and the QFT layer."""

import numpy as np
import pytest

from repro.quantum.qft import apply_inverse_qft, apply_qft, qft_matrix, qft_probabilities_of_coset
from repro.quantum.state import RegisterState


class TestQftMatrix:
    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_unitary(self, n):
        f = qft_matrix(n)
        assert np.allclose(f @ f.conj().T, np.eye(n), atol=1e-12)

    def test_matches_apply_qft_on_basis_state(self):
        n = 6
        amplitudes = np.zeros(n, dtype=np.complex128)
        amplitudes[2] = 1.0
        via_matrix = qft_matrix(n)[:, 2]
        via_fft = apply_qft(amplitudes)
        assert np.allclose(via_matrix, via_fft, atol=1e-12)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        state = rng.normal(size=(4, 3)) + 1j * rng.normal(size=(4, 3))
        state /= np.linalg.norm(state)
        assert np.allclose(apply_inverse_qft(apply_qft(state)), state, atol=1e-12)

    def test_partial_axes(self):
        rng = np.random.default_rng(2)
        state = rng.normal(size=(4, 3))
        transformed = apply_qft(state, axes=(0,))
        # Norm preserved, second axis untouched in aggregate.
        assert np.isclose(np.linalg.norm(transformed), np.linalg.norm(state))


class TestCosetDistribution:
    def test_subgroup_state_supported_on_annihilator(self):
        # H = <2> in Z_8; H^perp = {0, 4}.
        indicator = np.zeros(8)
        indicator[[0, 2, 4, 6]] = 1
        probs = qft_probabilities_of_coset(indicator)
        support = np.nonzero(probs > 1e-12)[0]
        assert set(support) == {0, 4}
        assert np.allclose(probs[support], 0.5)

    def test_coset_offset_does_not_change_distribution(self):
        base = np.zeros(12)
        base[[0, 3, 6, 9]] = 1
        shifted = np.roll(base, 5)
        assert np.allclose(qft_probabilities_of_coset(base), qft_probabilities_of_coset(shifted))

    def test_multidimensional_coset(self):
        # H = <(1,1)> in Z_2 x Z_2; H^perp = {(0,0), (1,1)}.
        indicator = np.zeros((2, 2))
        indicator[0, 0] = indicator[1, 1] = 1
        probs = qft_probabilities_of_coset(indicator)
        assert np.isclose(probs[0, 0], 0.5) and np.isclose(probs[1, 1], 0.5)
        assert np.isclose(probs[0, 1], 0.0) and np.isclose(probs[1, 0], 0.0)

    def test_rejects_zero_indicator(self):
        with pytest.raises(ValueError):
            qft_probabilities_of_coset(np.zeros(4))


class TestRegisterState:
    def test_initial_state(self):
        state = RegisterState((4, 3))
        probs = state.probabilities()
        assert np.isclose(probs[0, 0], 1.0)

    def test_uniform_preparation(self):
        state = RegisterState.uniform((4, 3), axes=(0,))
        probs = state.probabilities(axes=(0,))
        assert np.allclose(probs, 0.25)
        assert np.isclose(state.probabilities(axes=(1,))[0], 1.0)

    def test_size_limit(self):
        with pytest.raises(ValueError):
            RegisterState((1 << 12, 1 << 12))

    def test_apply_classical_function_is_permutation(self):
        state = RegisterState.uniform((4, 4), axes=(0,))
        state.apply_classical_function(lambda xs: xs[0] * 2, source_axes=(0,), target_axis=1)
        # Norm preserved and each source value maps to exactly one target value.
        assert np.isclose(np.linalg.norm(state.amplitudes), 1.0)
        probs = state.probabilities()
        for x in range(4):
            nonzero = np.nonzero(probs[x] > 1e-12)[0]
            assert list(nonzero) == [(x * 2) % 4]

    def test_measure_collapses(self, rng):
        state = RegisterState.uniform((4,))
        outcome = state.measure((0,), rng)
        assert 0 <= outcome[0] < 4
        assert np.isclose(state.probabilities()[outcome[0]], 1.0)

    def test_measurement_statistics_of_period_two_function(self, rng):
        # |x>|f(x)> with f(x) = x mod 2 on Z_8, then QFT: outcomes in {0, 4}.
        outcomes = set()
        for _ in range(20):
            state = RegisterState.uniform((8, 2), axes=(0,))
            state.apply_classical_function(lambda xs: xs[0] % 2, source_axes=(0,), target_axis=1)
            state.measure((1,), rng)
            state.qft(axes=(0,))
            outcomes.add(state.measure((0,), rng)[0])
        assert outcomes <= {0, 4}
        assert len(outcomes) == 2

    def test_fidelity(self):
        a = RegisterState((4,))
        b = RegisterState((4,))
        assert np.isclose(a.fidelity_with(b), 1.0)
        b.amplitudes = np.roll(b.amplitudes, 1)
        assert np.isclose(a.fidelity_with(b), 0.0)

    def test_copy_is_independent(self):
        a = RegisterState((4,))
        b = a.copy()
        b.qft()
        assert not np.allclose(a.amplitudes, b.amplitudes)
