"""Quickstart: the hidden subgroup problem pipeline in a few dozen lines.

Three escalating examples:

1. the Abelian HSP (Theorem 3 of the paper) on ``Z_512 x Z_729``,
2. Simon's problem as a special case,
3. a genuinely non-Abelian instance — an extraspecial 5-group — solved with
   the paper's Theorem 11 algorithm through the top-level dispatcher.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.blackbox import HSPInstance
from repro.core import solve_hsp
from repro.groups import AbelianTupleGroup, extraspecial_group
from repro.groups.subgroup import subgroup_order


def abelian_example(rng: np.random.Generator) -> None:
    print("=== 1. Abelian HSP in Z_512 x Z_729 (Theorem 3) ===")
    group = AbelianTupleGroup([512, 729])
    hidden = [(16, 27)]  # the hidden subgroup <(16, 27)>
    instance = HSPInstance.from_subgroup(group, hidden, name="abelian quickstart")

    solution = solve_hsp(instance, rng=rng)
    print(f"  strategy            : {solution.strategy}")
    print(f"  recovered generators: {solution.generators}")
    print(f"  correct             : {instance.verify(solution.generators)}")
    print(f"  quantum queries     : {solution.query_report['quantum_queries']}")
    print()


def simon_example(rng: np.random.Generator) -> None:
    print("=== 2. Simon's problem on Z_2^8 ===")
    group = AbelianTupleGroup([2] * 8)
    secret = tuple(int(b) for b in rng.integers(0, 2, size=8))
    if not any(secret):
        secret = (1,) + secret[1:]
    instance = HSPInstance.from_subgroup(group, [secret], name="simon")

    solution = solve_hsp(instance, rng=rng)
    print(f"  hidden xor-mask     : {secret}")
    print(f"  recovered generators: {solution.generators}")
    print(f"  correct             : {instance.verify(solution.generators)}")
    print()


def extraspecial_example(rng: np.random.Generator) -> None:
    print("=== 3. Non-Abelian HSP in the extraspecial group of order 125 (Theorem 11) ===")
    group = extraspecial_group(5)
    hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(
        group,
        hidden,
        promises={"commutator_elements": group.commutator_subgroup_elements()},
        name="extraspecial quickstart",
    )

    solution = solve_hsp(instance, rng=rng)
    order = subgroup_order(group, solution.generators or [group.identity()])
    print(f"  strategy            : {solution.strategy}")
    print(f"  |recovered subgroup|: {order}")
    print(f"  correct             : {instance.verify(solution.generators or [group.identity()])}")
    print(f"  oracle queries      : {solution.query_report['classical_queries']} classical, "
          f"{solution.query_report['quantum_queries']} quantum")
    print()


def main() -> None:
    rng = np.random.default_rng(2001)
    abelian_example(rng)
    simon_example(rng)
    extraspecial_example(rng)


if __name__ == "__main__":
    main()
