"""Theorem 8 in action: hidden normal subgroups of solvable and permutation groups.

The normal HSP asks for a hidden subgroup that is promised to be normal.
Theorem 8 finds it without any non-Abelian Fourier transform: compute a
presentation of ``G/N`` with the quantum Theorem 7 toolkit, substitute the
generators into the relators, and take the normal closure.

Instances below:

* the alternating group ``A_n`` hidden inside ``S_n`` (permutation groups),
* rotation subgroups of dihedral groups (solvable, Abelian factor group),
* the center of an extraspecial group,
* the normal ``Z_p`` inside the metacyclic group ``Z_p : Z_q``,
* a *non-Abelian* factor group handled through the bounded-quotient
  (Schreier generators) path.

Run with:  python examples/hidden_normal_solvable.py
"""

import numpy as np

from repro.blackbox import HSPInstance
from repro.core.hidden_normal import find_hidden_normal_subgroup
from repro.groups import (
    alternating_group,
    dihedral_semidirect,
    extraspecial_group,
    metacyclic_group,
    symmetric_group,
)
from repro.groups.subgroup import subgroup_order
from repro.quantum.sampling import FourierSampler


def report(name, group, hidden, rng, **kwargs):
    instance = HSPInstance.from_subgroup(group, hidden)
    result = find_hidden_normal_subgroup(
        group, instance.oracle, sampler=FourierSampler(rng=rng), **kwargs
    )
    correct = instance.verify(result.generators or [group.identity()])
    truth = subgroup_order(group, hidden)
    found = subgroup_order(group, result.generators or [group.identity()])
    print(f"  {name:34s} |G| = {group.order():6d}  |N| = {truth:6d}  found = {found:6d}  "
          f"method = {result.method:26s} |G/N| = {result.quotient_order:4d}  correct = {correct}")


def main() -> None:
    rng = np.random.default_rng(8)

    print("Hidden normal subgroups (Theorem 8)")
    print("-" * 118)

    for n in [4, 5, 6]:
        report(f"A_{n} inside S_{n}", symmetric_group(n), alternating_group(n).generators(), rng)

    for n in [12, 60, 240]:
        group = dihedral_semidirect(n)
        report(f"<r> inside D_{n}", group, [group.embed_normal((1,))], rng)

    group = extraspecial_group(7)
    report("center of extraspecial 7-group", group, group.center_generators(), rng)

    group = metacyclic_group(31, 5)
    report("Z_31 inside Z_31 : Z_5", group, [group.embed_normal((1,))], rng)

    # Non-Abelian factor group: N = <r^5> inside D_35, G/N is dihedral of order 10.
    group = dihedral_semidirect(35)
    report("<r^5> inside D_35 (G/N = D_5)", group, [group.embed_normal((5,))], rng, quotient_bound=32)

    print()
    print("Every row was found from oracle access only: the solver saw the hiding")
    print("function and the group oracle, never the subgroup it was built from.")


if __name__ == "__main__":
    main()
