"""Theorem 13 in action: elementary Abelian normal 2-subgroups.

Two instance families from the paper's Section 6:

* the wreath products ``Z_2^k wr Z_2`` of Rötteler--Beth (the original
  polynomial-time non-Abelian HSP family), solved both by Theorem 13 and by
  the wreath-specific Rötteler--Beth baseline, and
* the characteristic-2 affine matrix groups (one type (a) generator with an
  invertible block, type (b) translation generators) whose factor group is
  cyclic — an instance class the earlier algorithm does not cover.

Run with:  python examples/wreath_product_hsp.py
"""

import numpy as np

from repro.blackbox import HSPInstance
from repro.core.elementary_abelian_two import solve_hsp_elementary_abelian_two
from repro.groups.catalog import affine_gf2_instance, wreath_instance
from repro.groups.subgroup import subgroup_order
from repro.hsp.rotteler_beth import rotteler_beth_wreath
from repro.quantum.sampling import FourierSampler


def wreath_demo(rng: np.random.Generator) -> None:
    print("=== Wreath products Z_2^k wr Z_2 (cyclic factor group Z_2) ===")
    for k in [1, 2, 3, 4]:
        group, normal_gens = wreath_instance(k)
        hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
        instance = HSPInstance.from_subgroup(group, hidden)
        sampler = FourierSampler(rng=rng)

        ours = solve_hsp_elementary_abelian_two(
            group, instance.oracle, normal_gens, sampler=sampler, cyclic_quotient=True
        )
        baseline_instance = HSPInstance.from_subgroup(group, hidden)
        baseline = rotteler_beth_wreath(baseline_instance, sampler)

        order_truth = subgroup_order(group, hidden)
        order_ours = subgroup_order(group, ours.generators or [group.identity()])
        order_baseline = subgroup_order(group, baseline.generators or [group.identity()])
        print(f"  k = {k}:  |G| = {group.order():5d}   |H| = {order_truth:4d}   "
              f"Theorem 13 -> {order_ours:4d} (correct={instance.verify(ours.generators or [group.identity()])})   "
              f"Rötteler-Beth -> {order_baseline:4d}   "
              f"quantum rounds = {ours.query_report['quantum_queries']}")
    print()


def affine_demo(rng: np.random.Generator) -> None:
    print("=== Affine-type matrix groups over GF(2) (Section 6, cyclic factor group) ===")
    for k in [2, 3, 4, 5]:
        group, normal_gens = affine_gf2_instance(k)
        hidden = [group.random_element(rng)]
        instance = HSPInstance.from_subgroup(group, hidden)
        sampler = FourierSampler(rng=rng)

        result = solve_hsp_elementary_abelian_two(
            group, instance.oracle, normal_gens, sampler=sampler, cyclic_quotient=True
        )
        order_truth = subgroup_order(group, hidden)
        order_found = subgroup_order(group, result.generators or [group.identity()])
        print(f"  k = {k}:  |N| = 2^{len(normal_gens)}   |H| = {order_truth:4d}   "
              f"found |H| = {order_found:4d}   "
              f"correct = {instance.verify(result.generators or [group.identity()])}   "
              f"coset reps probed = {result.representatives_used}")
    print()


def general_case_demo(rng: np.random.Generator) -> None:
    print("=== General case: Z_2^4 : S_3 (non-cyclic factor group, |G/N| = 6) ===")
    from repro.groups.catalog import elementary_abelian_semidirect_instance

    group, normal_gens = elementary_abelian_semidirect_instance(4, "S3")
    hidden = [group.random_element(rng), group.random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden)
    result = solve_hsp_elementary_abelian_two(
        group, instance.oracle, normal_gens,
        sampler=FourierSampler(rng=rng), cyclic_quotient=False, quotient_bound=12,
    )
    print(f"  |G| = {group.order()}   |H| = {subgroup_order(group, hidden)}   "
          f"found = {subgroup_order(group, result.generators or [group.identity()])}   "
          f"correct = {instance.verify(result.generators or [group.identity()])}   "
          f"transversal size = {result.representatives_used}")
    print()


def main() -> None:
    rng = np.random.default_rng(13)
    wreath_demo(rng)
    affine_demo(rng)
    general_case_demo(rng)


if __name__ == "__main__":
    main()
