"""The quantum substrate on its own: gate-level Shor and Fourier sampling.

The paper builds on standard quantum machinery — order finding, factoring,
the Abelian quantum Fourier transform.  This example exercises that substrate
directly:

1. gate-level Shor period finding and factoring on the dense state-vector
   simulator (small moduli, honest circuit),
2. order finding phrased as an Abelian HSP (the formulation Theorems 6/7 use),
3. a side-by-side comparison of the two Fourier-sampling backends
   (``statevector`` vs. ``analytic``) on the same hidden subgroup, showing
   they sample the same distribution,
4. the Cheung--Mosca decomposition of an Abelian group into cyclic factors.

Run with:  python examples/shor_and_simon.py
"""

from collections import Counter

import numpy as np

from repro.groups import AbelianTupleGroup
from repro.hsp.decomposition import decompose_abelian_group
from repro.quantum.sampling import FourierSampler, SubgroupStructureOracle
from repro.quantum.shor import order_via_period_sampling, quantum_factor, shor_period_gate_level


def gate_level_shor(rng: np.random.Generator) -> None:
    print("=== 1. Gate-level Shor on the state-vector simulator ===")
    for a, n in [(2, 15), (7, 15), (2, 21)]:
        r = shor_period_gate_level(a, n, rng)
        print(f"  order of {a} modulo {n}: {r}   (check: {a}^{r} mod {n} = {pow(a, r, n)})")
    print(f"  factoring 15: {quantum_factor(15, rng)}")
    print(f"  factoring 21: {quantum_factor(21, rng)}")
    print()


def order_finding_as_hsp(rng: np.random.Generator) -> None:
    print("=== 2. Order finding as an Abelian HSP (the paper's formulation) ===")
    group = AbelianTupleGroup([2**16 - 1])
    sampler = FourierSampler(backend="analytic", rng=rng)
    for element in [(3,), (5,), (7,)]:
        order = order_via_period_sampling(group, element, 2**16 - 1, sampler)
        print(f"  order of {element[0]} in Z_{2**16 - 1}: {order}")
    print()


def backend_comparison(rng: np.random.Generator) -> None:
    print("=== 3. Fourier sampling backends agree (Simon instance on Z_2^3) ===")
    oracle = SubgroupStructureOracle([2, 2, 2], [(1, 1, 0)])
    for backend in ["statevector", "analytic"]:
        sampler = FourierSampler(backend=backend, rng=rng)
        counts = Counter(sampler.sample(oracle, 200))
        support = sorted(counts)
        print(f"  {backend:12s}: support = {support}")
    print("  (both backends sample uniformly from the annihilator of <(1,1,0)>)")
    print()


def abelian_decomposition(rng: np.random.Generator) -> None:
    print("=== 4. Cheung-Mosca decomposition (Theorem 1) ===")
    group = AbelianTupleGroup([8, 12, 90])
    decomposition = decompose_abelian_group(group, sampler=FourierSampler(rng=rng))
    print(f"  Z_8 x Z_12 x Z_90  ~=  " + " x ".join(f"Z_{d}" for d in decomposition.invariant_factors))
    print(f"  primary decomposition: " + " x ".join(f"Z_{q}" for q in decomposition.prime_power_orders()))
    print(f"  Sylow subgroup orders: {decomposition.sylow_subgroup_orders()}")
    print()


def main() -> None:
    rng = np.random.default_rng(1994)  # the year of Shor's algorithm
    gate_level_shor(rng)
    order_finding_as_hsp(rng)
    backend_comparison(rng)
    abelian_decomposition(rng)


if __name__ == "__main__":
    main()
