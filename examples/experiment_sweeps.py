"""The experiment-orchestration subsystem: declarative, parallel, persistent sweeps.

The paper's algorithms are judged by oracle-query counts, so the interesting
empirical questions (query scaling vs. group order, strategy behaviour,
success statistics) all require *sweeps* of many independent ``solve_hsp``
runs.  ``repro.experiments`` makes those sweeps declarative and parallel:

* a :class:`~repro.experiments.SweepSpec` describes a grid of (group family,
  instance parameters, solver options, seeds);
* the runner expands it deterministically into picklable run descriptors
  and executes them on a process pool — workers rebuild instances locally
  and share nothing; query reports merge by ``QueryCounter`` addition;
* results persist as ``BENCH_<name>.json`` (deterministic rows + timings +
  aggregate); rows are byte-identical for any worker count at a fixed seed.

Everything below is also available from the shell::

    python -m repro.experiments list
    python -m repro.experiments run smoke --workers 2 --out .benchmarks
    python -m repro.experiments report smoke --out .benchmarks

Run with:  python examples/experiment_sweeps.py
"""

import json
import tempfile

from repro.experiments import SamplerSpec, SweepSpec, WORKLOADS, run_sweep
from repro.experiments.results import rows_bytes


def declared_workloads() -> None:
    print("=== 1. The declared workload catalogue ===")
    for name in sorted(WORKLOADS)[:6]:
        spec = WORKLOADS[name]
        print(f"  {name:<28} family={spec.family:<22} runs={len(spec.expand())}")
    print(f"  ... ({len(WORKLOADS)} total; see `python -m repro.experiments list`)")
    print()


def run_a_declared_sweep(out_dir: str) -> None:
    print("=== 2. Run the CI smoke sweep on 2 worker processes ===")
    path, payload = run_sweep(WORKLOADS["smoke"], workers=2, out_dir=out_dir)
    aggregate = payload["aggregate"]
    print(f"  wrote                : {path}")
    print(f"  successes            : {aggregate['successes']}/{aggregate['runs']}")
    print(f"  total quantum queries: {aggregate['query_totals']['quantum_queries']}")
    print()


def declare_your_own(out_dir: str) -> None:
    print("=== 3. Declare a custom sweep (grid x repeats, sharded sampling) ===")
    spec = SweepSpec.from_grid(
        "custom-extraspecial",
        "extraspecial_random",
        {"p": [3, 5, 7]},
        repeats=2,
        sampler=SamplerSpec(shards=2),
        description="query scaling of Theorem 11 in the commutator order p",
    )
    _, payload = run_sweep(spec, workers=2, out_dir=out_dir)
    print("  per-run quantum queries by p:")
    for row in payload["rows"]:
        report = row["query_report"]
        print(
            f"    p={row['params']['p']}  repeat={row['repeat']}  "
            f"quantum={report['quantum_queries']:>3}  classical={report['classical_queries']:>4}"
        )
    print()


def determinism(out_dir: str) -> None:
    print("=== 4. Worker-count independence ===")
    spec = WORKLOADS["smoke"]
    _, serial = run_sweep(spec, workers=1, out_dir=None)
    _, pooled = run_sweep(spec, workers=4, out_dir=None)
    identical = rows_bytes(serial) == rows_bytes(pooled)
    print(f"  workers=1 and workers=4 rows byte-identical: {identical}")
    merged = serial["aggregate"]["query_totals"]
    summed = {}
    for row in serial["rows"]:
        for key, value in row["query_report"].items():
            summed[key] = summed.get(key, 0) + value
    print(f"  aggregate equals sum of per-run reports   : {merged == summed}")


def main() -> None:
    with tempfile.TemporaryDirectory() as out_dir:
        declared_workloads()
        run_a_declared_sweep(out_dir)
        declare_your_own(out_dir)
        determinism(out_dir)


if __name__ == "__main__":
    main()
