"""Theorem 11 / Corollary 12 in action: the HSP in extraspecial p-groups.

The paper's Theorem 11 solves the hidden subgroup problem in any black-box
group with a small commutator subgroup ``G'`` in time polynomial in
``input size + |G'|``; Corollary 12 applies it to extraspecial ``p``-groups,
where ``|G'| = p``.  This example

* sweeps the prime ``p`` to show how the cost tracks ``|G'| = p``,
* prints the intermediate objects of the algorithm (``H ∩ G'``, the
  generators of ``HG'``, the lifted coset generators), and
* cross-checks the answer against the exhaustive classical baseline on the
  smallest instance.

Run with:  python examples/extraspecial_hsp.py
"""

import numpy as np

from repro.blackbox import HSPInstance
from repro.core.small_commutator import solve_hsp_small_commutator
from repro.groups import extraspecial_group
from repro.groups.subgroup import subgroup_order
from repro.hsp.baseline_classical import classical_exhaustive_hsp
from repro.quantum.sampling import FourierSampler


def run_one(p: int, rng: np.random.Generator, verbose: bool = False) -> None:
    group = extraspecial_group(p)
    hidden = [group.uniform_random_element(rng), group.uniform_random_element(rng)]
    instance = HSPInstance.from_subgroup(group, hidden, name=f"extraspecial p={p}")
    sampler = FourierSampler(rng=rng)

    result = solve_hsp_small_commutator(
        group,
        instance.oracle,
        sampler=sampler,
        commutator_elements=group.commutator_subgroup_elements(),
    )
    truth_order = subgroup_order(group, hidden)
    found_order = subgroup_order(group, result.generators or [group.identity()])
    report = result.query_report

    print(f"p = {p:3d}   |G| = {p**3:5d}   |G'| = {result.commutator_order}   "
          f"|H| = {truth_order:4d}   |H_found| = {found_order:4d}   "
          f"correct = {instance.verify(result.generators or [group.identity()])}   "
          f"f-queries = {report['classical_queries']:6d}   quantum rounds = {report['quantum_queries']:4d}")

    if verbose:
        print(f"    H ∩ G' generators : {result.intersection_generators}")
        print(f"    lifted generators : {result.coset_generators}")


def main() -> None:
    rng = np.random.default_rng(11)

    print("Theorem 11 on extraspecial p-groups (Heisenberg groups of order p^3)")
    print("-" * 100)
    for p in [3, 5, 7, 11, 13]:
        run_one(p, rng, verbose=(p == 3))

    print()
    print("Cross-check against the exhaustive classical baseline (p = 3):")
    group = extraspecial_group(3)
    hidden = [group.uniform_random_element(rng)]
    quantum_instance = HSPInstance.from_subgroup(group, hidden)
    classical_instance = HSPInstance.from_subgroup(group, hidden)
    quantum = solve_hsp_small_commutator(
        group, quantum_instance.oracle, sampler=FourierSampler(rng=rng),
        commutator_elements=group.commutator_subgroup_elements(),
    )
    classical = classical_exhaustive_hsp(classical_instance)
    q_order = subgroup_order(group, quantum.generators or [group.identity()])
    c_order = subgroup_order(group, classical.generators or [group.identity()])
    print(f"  quantum  : |H| = {q_order}, oracle queries = {quantum.query_report['classical_queries']}")
    print(f"  classical: |H| = {c_order}, oracle queries = {classical.oracle_queries} (= |G|)")
    assert q_order == c_order


if __name__ == "__main__":
    main()
