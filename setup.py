"""Package metadata for the Ivanyos–Magniez–Santha HSP reproduction.

Kept as a plain ``setup.py`` (rather than ``pyproject.toml``) so that legacy
editable installs (``pip install -e . --no-use-pep517``) work in offline
environments that lack the ``wheel`` package required for PEP 660 editable
wheels.  The long description is the top-level ``README.md``.
"""

import pathlib

from setuptools import find_packages, setup

README = pathlib.Path(__file__).parent / "README.md"

setup(
    name="ims-hsp-repro",
    version="0.5.0",
    description=(
        "Reproduction of Ivanyos, Magniez & Santha (SPAA 2001): efficient quantum "
        "algorithms for some instances of the non-Abelian hidden subgroup problem"
    ),
    long_description=README.read_text(encoding="utf-8") if README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "hypothesis", "pytest-benchmark"]},
    entry_points={
        "console_scripts": [
            "hsp-experiments=repro.experiments.cli:main",
        ]
    },
    classifiers=[
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Physics",
        "Intended Audience :: Science/Research",
    ],
)
